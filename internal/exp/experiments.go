package exp

import (
	"math"

	"popcount/internal/backup"
	"popcount/internal/balance"
	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/core"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// E1Broadcast reproduces Lemma 3: one-way epidemics complete within
// O(n log n) interactions w.h.p.
func E1Broadcast(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E1",
		Title:   "one-way epidemics (broadcast)",
		Claim:   "Lemma 3: T_bc = O(n log n) w.h.p.",
		Columns: []string{"n", "trials", "conv", "T/(n ln n) mean", "T/(n ln n) max"},
	}
	ns := o.sizes([]int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 8, 1 << 11})
	var fitN []int
	var fitT []float64
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol { return sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true)) },
			o.trials(1), sim.Config{Seed: o.Seed + uint64(n), CheckEvery: int64(n) / 4}, o.Parallelism)
		norms := normTimes(outs, nLogN(n))
		s, _ := stats.Summarize(norms)
		tbl.AddRow(itoa(n), itoa(len(outs)), pct(convRate(outs)), f2(s.Mean), f2(s.Max))
		fitN = append(fitN, n)
		fitT = append(fitT, meanInteractions(outs))
	}
	fitNote(&tbl, fitN, fitT, "≈1 (×log n)")
	return tbl
}

// E2Junta reproduces Lemma 4: the junta process settles in O(n log n)
// interactions with level* ∈ [log log n − 4, log log n + 8] and a junta
// of size O(√n·log n).
func E2Junta(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E2",
		Title:   "junta process",
		Claim:   "Lemma 4: inactive within O(n log n); log log n − 4 ≤ level* ≤ log log n + 8; junta size O(√n log n)",
		Columns: []string{"n", "trials", "level* (min..max)", "loglogn", "junta size mean", "√n·log n", "settle/(n ln n)", "window ok"},
	}
	ns := o.sizes([]int{1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 13})
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol { return junta.New(n) },
			o.trials(1), sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism)
		loglogn := math.Log2(math.Log2(float64(n)))
		minL, maxL := 255, 0
		var sizes, norms []float64
		okWindow := 0
		for _, out := range outs {
			p := out.p.(*junta.Protocol)
			l := p.MaxLevelReached()
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			sizes = append(sizes, float64(p.JuntaSize()))
			norms = append(norms, float64(p.SettleTime())/nLogN(n))
			if float64(l) >= loglogn-4 && float64(l) <= loglogn+8 {
				okWindow++
			}
		}
		tbl.AddRow(itoa(n), itoa(len(outs)),
			itoa(minL)+".."+itoa(maxL), f2(loglogn),
			f1(stats.Mean(sizes)), f1(math.Sqrt(float64(n))*math.Log2(float64(n))),
			f2(stats.Mean(norms)), pct(float64(okWindow)/float64(len(outs))))
	}
	return tbl
}

// E3PhaseClock reproduces Lemma 5: phase intervals have length Θ(n log n)
// with properly nested phases, for several clock constants m.
func E3PhaseClock(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E3",
		Title:   "junta-driven phase clock",
		Claim:   "Lemma 5: c·n·log n ≤ D_i ≤ c·n·log n + Θ(n log n) for m = m(c) = O(1)",
		Columns: []string{"n", "m", "phases ok", "D/(n ln n) mean", "D/(n ln n) min", "D/(n ln n) max"},
	}
	ns := o.sizes([]int{1 << 10, 1 << 13, 1 << 15}, []int{1 << 10, 1 << 13})
	for _, n := range ns {
		for _, m := range []int{16, 32, 64} {
			j := 2 * sim.Log2Ceil(n)
			p := clock.NewProtocol(n, m, j, 6)
			cfg := sim.Config{Seed: o.Seed + uint64(n*m), MaxInteractions: int64(n) * 20000}
			res, err := sim.Run(p, cfg)
			if err != nil {
				panic(err)
			}
			conv := int64(0)
			if res.Converged {
				conv = 1
			}
			countTrials(1, conv, res.Total)
			var lens []float64
			ok := 0
			for i := 1; i <= 4; i++ {
				if ds, de, valid := p.PhaseInterval(i); valid {
					ok++
					lens = append(lens, float64(de-ds)/nLogN(n))
				}
			}
			s, err := stats.Summarize(lens)
			if err != nil {
				tbl.AddRow(itoa(n), itoa(m), "0/4", "n/a", "n/a", "n/a")
				continue
			}
			tbl.AddRow(itoa(n), itoa(m), itoa(ok)+"/4", f2(s.Mean), f2(s.Min), f2(s.Max))
		}
	}
	tbl.AddNote("phase length grows linearly in m and is flat in n, as Lemma 5 requires")
	return tbl
}

// E4LeaderElect reproduces Lemma 6: leader_elect elects a unique leader
// within O(n log² n) interactions.
func E4LeaderElect(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E4",
		Title:   "slow leader election (leader_elect, [GS18])",
		Claim:   "Lemma 6: unique leader, stabilizes in O(n log² n), O(log log n) states",
		Columns: []string{"n", "trials", "unique", "T/(n ln² n) mean", "T/(n ln² n) max"},
	}
	ns := o.sizes([]int{1 << 9, 1 << 11, 1 << 13, 1 << 15}, []int{1 << 9, 1 << 12})
	var fitN []int
	var fitT []float64
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol {
			return leader.NewProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n))
		}, o.trials(2), sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism)
		unique := 0
		for _, out := range outs {
			if out.res.Converged && out.p.(*leader.Protocol).Leaders() == 1 {
				unique++
			}
		}
		norms := normTimes(outs, nLog2N(n))
		s, _ := stats.Summarize(norms)
		tbl.AddRow(itoa(n), itoa(len(outs)), pct(float64(unique)/float64(len(outs))), f2(s.Mean), f2(s.Max))
		fitN = append(fitN, n)
		fitT = append(fitT, meanInteractions(outs))
	}
	fitNote(&tbl, fitN, fitT, "≈1 (×log² n)")
	return tbl
}

// E5FastLeader reproduces Lemma 7: FastLeaderElection elects a unique
// leader within O(n log n) interactions.
func E5FastLeader(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E5",
		Title:   "FastLeaderElection ([BEFKKR18], Appendix D)",
		Claim:   "Lemma 7: unique leader, stabilizes in O(n log n), Õ(n) states",
		Columns: []string{"n", "trials", "unique", "T/(n ln n) mean", "T/(n ln n) max"},
	}
	ns := o.sizes([]int{1 << 9, 1 << 11, 1 << 13, 1 << 15}, []int{1 << 9, 1 << 12})
	var fitN []int
	var fitT []float64
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol {
			return leader.NewFastProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), leader.DefaultFastRounds)
		}, o.trials(2), sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism)
		unique := 0
		for _, out := range outs {
			if out.res.Converged && out.p.(*leader.FastProtocol).Leaders() == 1 {
				unique++
			}
		}
		norms := normTimes(outs, nLogN(n))
		s, _ := stats.Summarize(norms)
		tbl.AddRow(itoa(n), itoa(len(outs)), pct(float64(unique)/float64(len(outs))), f2(s.Mean), f2(s.Max))
		fitN = append(fitN, n)
		fitT = append(fitT, meanInteractions(outs))
	}
	fitNote(&tbl, fitN, fitT, "≈1 (×log n)")
	return tbl
}

// E6PowerOfTwo reproduces Lemma 8: the powers-of-two process started with
// 2^κ ≤ ¾·n tokens reaches maximum load 1 within 16·n·log n interactions,
// while 2^κ ≥ n cannot (pigeonhole).
func E6PowerOfTwo(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E6",
		Title:   "powers-of-two load balancing",
		Claim:   "Lemma 8: max load 1 within 16·n·log n when 2^κ ≤ ¾n; impossible when 2^κ ≥ n",
		Columns: []string{"n", "case", "κ", "trials", "done in bound", "T/(n ln n) mean"},
	}
	ns := o.sizes([]int{1 << 9, 1 << 12, 1 << 15}, []int{1 << 9, 1 << 12})
	for _, n := range ns {
		underK := sim.Log2Floor(3 * n / 4)
		overK := sim.Log2Ceil(n)
		for _, c := range []struct {
			name  string
			kappa int
			want  bool
		}{{"2^κ ≤ ¾n", underK, true}, {"2^κ ≥ n", overK, false}} {
			limit := int64(16 * float64(n) * math.Log2(float64(n)))
			outs := runMany(func(int) sim.Protocol { return balance.NewPowers(n, c.kappa, true) },
				o.trials(1), sim.Config{Seed: o.Seed + uint64(n+c.kappa), MaxInteractions: limit}, o.Parallelism)
			norms := normTimes(outs, nLogN(n))
			mean := "n/a"
			if len(norms) > 0 {
				mean = f2(stats.Mean(norms))
			}
			tbl.AddRow(itoa(n), c.name, itoa(c.kappa), itoa(len(outs)), pct(convRate(outs)), mean)
		}
	}
	tbl.AddNote("the overloaded case must show 0%% completion — some agent keeps load ≥ 2 forever")
	return tbl
}

// E7Search reproduces Lemma 9: the Search Protocol stops with
// ¾·n < 2^k ≤ 2^⌈log n⌉ after at most ⌈log n⌉ rounds (measured through
// protocol Approximate's final k).
func E7Search(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E7",
		Title:   "Search Protocol result window",
		Claim:   "Lemma 9: searchDone with ¾·n < 2^k ≤ 2^⌈log n⌉ after ≤ ⌈log n⌉ rounds",
		Columns: []string{"n", "trials", "conv", "window ok", "2^k/n mean"},
	}
	ns := o.sizes([]int{300, 1000, 3000, 10000}, []int{300, 1500})
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol { return core.NewApproximate(core.Config{N: n}) },
			o.trials(2), sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism)
		okWindow := 0
		var ratios []float64
		for _, out := range outs {
			if !out.res.Converged {
				continue
			}
			p := out.p.(*core.Approximate)
			est := float64(p.Estimate(0))
			ratios = append(ratios, est/float64(n))
			if est > 0.75*float64(n) && est <= math.Pow(2, float64(sim.Log2Ceil(n))) {
				okWindow++
			}
		}
		tbl.AddRow(itoa(n), itoa(len(outs)), pct(convRate(outs)),
			pct(float64(okWindow)/float64(len(outs))), f2(stats.Mean(ratios)))
	}
	return tbl
}

// E8Approximate reproduces Theorem 1.1: protocol Approximate outputs
// ⌊log n⌋ or ⌈log n⌉ w.h.p. within O(n log² n) interactions using
// O(log n · log log n) states. Since the spec port, every engine column
// derives from the one core.NewApproximateSpec rule: the agent rows run
// the spec's agent adapter (bit-for-bit the hand-written protocol), the
// count and batched rows the spec's count form — the batched column
// reaches n = 10⁸, three orders of magnitude past the agent engine.
func E8Approximate(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E8",
		Title:   "protocol Approximate (Algorithm 2)",
		Claim:   "Theorem 1.1: output ∈ {⌊log n⌋, ⌈log n⌉} w.h.p.; O(n log² n) interactions; O(log n·log log n) states",
		Columns: []string{"n", "engine", "trials", "correct", "T/(n ln² n) mean", "max k", "max level"},
	}
	type row struct {
		n      int
		engine string
	}
	var rows []row
	ns := o.sizes([]int{1 << 9, 1 << 11, 1 << 13, 10000}, []int{1 << 9, 1 << 11})
	for _, n := range ns {
		rows = append(rows, row{n, "agent"})
	}
	if len(o.Sizes) == 0 {
		if o.Quick {
			// One exact-count row at agent scale, one batched row at the
			// scale where batching actually engages (below ~2¹⁴ the
			// occupied alphabet squares past the epoch cap and the
			// planner's amortization gate degrades to exact stepping —
			// a row there would just duplicate the count column).
			rows = append(rows,
				row{1 << 9, "count"},
				row{1 << 16, "count-batched"})
		} else {
			rows = append(rows,
				row{1 << 9, "count"}, row{1 << 11, "count"},
				row{1 << 9, "count-batched"}, row{1 << 11, "count-batched"},
				row{1 << 13, "count-batched"}, row{10000, "count-batched"},
				// The scaled row: the count-batched engine simulates the
				// Θ(n log² n) chain at n = 10⁸ in minutes (the agent
				// engine would need ~100 GB for the array alone).
				row{1e8, "count-batched"})
		}
	} else {
		for _, n := range ns {
			rows = append(rows, row{n, "count-batched"})
		}
	}
	var fitN []int
	var fitT []float64
	for _, rw := range rows {
		trials := o.trials(2)
		if rw.engine != "agent" && rw.n >= 1<<14 {
			trials = 2
		}
		if rw.n >= 1e7 {
			trials = 1
		}
		mean := approxEngineRows(&tbl, rw.n, rw.engine, trials, o.Parallelism, o.Seed+uint64(3*rw.n))
		if rw.engine == "agent" {
			fitN = append(fitN, rw.n)
			fitT = append(fitT, mean)
		}
	}
	fitNote(&tbl, fitN, fitT, "≈1 (×log² n)")
	tbl.AddNote("all engine columns derive from one transition spec (core.NewApproximateSpec);" +
		" count rows report the plurality (consensus) output's correctness")
	return tbl
}

// specCellRun is one finished trial of an engine-column cell: exactly
// one of agent (the "agent" column) and eng (the count columns) is
// non-nil, so callers can read column-appropriate outputs.
type specCellRun struct {
	res   sim.Result
	agent *sim.SpecAgent
	eng   *sim.CountEngine
}

// runSpecCells runs the trials of one engine-column cell — "agent",
// "count" or "count-batched" — in parallel through the engine's shared
// trial drivers (trial i uses seed TrialSeed(cfg.Seed, i), so results
// and the deterministic counters are independent of parallelism). It
// is the one engine-dispatch body behind every engine-column
// experiment (E9, E13/E14, E16, E17); E8 drives the runners directly
// for its per-trial metrics. mkSpec is invoked once per trial, on the
// trial's own goroutine — each spec owns its interner, which must
// never be shared across trials (see sim.Interner) — and may record
// the spec in a trial-indexed slot for post-run decoding.
func runSpecCells(mkSpec func(trial int) *sim.Spec, engine string, trials, par int, cfg sim.Config) []specCellRun {
	out := make([]specCellRun, trials)
	if engine == "agent" {
		runs, err := sim.RunTrials(func(tr int) sim.Protocol {
			out[tr].agent = sim.NewSpecAgent(mkSpec(tr))
			return out[tr].agent
		}, trials, cfg, sim.TrialOptions{Parallelism: par})
		if err != nil {
			panic(err) // sizes are static; an error is a programming bug
		}
		for i, r := range runs {
			out[i].res = r.Result
		}
		return out
	}
	cfg.BatchSteps = engine == "count-batched"
	runs, err := sim.RunCountTrials(func(tr int) sim.CountProtocol {
		return sim.NewSpecCount(mkSpec(tr))
	}, trials, cfg, sim.CountTrialOptions{Parallelism: par})
	if err != nil {
		panic(err)
	}
	for i, r := range runs {
		countEngineStats(r.Engine.Stats())
		out[i] = specCellRun{res: r.Result, eng: r.Engine}
	}
	return out
}

// approxEngineRows runs one (n, engine) cell of E8 — trials in
// parallel through the engine's shared trial drivers, per-trial specs
// kept for the configuration-level metrics — and appends its row,
// returning the mean convergence time for the scaling fit.
func approxEngineRows(tbl *Table, n int, engine string, trials, par int, seed uint64) (mean float64) {
	lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
	conv, correct, maxK, maxLvl := 0, 0, 0, 0
	var norms []float64
	var interactions int64
	specs := make([]*core.ApproximateSpec, trials)
	cfg := sim.Config{Seed: seed, CheckEvery: int64(n)}

	tally := func(tr int, res sim.Result, view sim.ConfigView, ok bool) {
		interactions += res.Total
		if res.Converged {
			conv++
			norms = append(norms, float64(res.Interactions))
		}
		if ok {
			correct++
		}
		m := specs[tr].Metrics(view)
		if m.MaxK > maxK {
			maxK = m.MaxK
		}
		if m.MaxLevel > maxLvl {
			maxLvl = m.MaxLevel
		}
	}

	if engine == "agent" {
		runs, err := sim.RunTrials(func(tr int) sim.Protocol {
			specs[tr] = core.NewApproximateSpec(core.Config{N: n})
			return sim.NewSpecAgent(specs[tr].Spec)
		}, trials, cfg, sim.TrialOptions{Parallelism: par})
		if err != nil {
			panic(err) // sizes are static; an error is a programming bug
		}
		for tr, r := range runs {
			agent := r.Protocol.(*sim.SpecAgent)
			ok := r.Result.Converged
			if ok {
				for i := 0; i < n; i++ {
					if v := agent.Output(i); v != lo && v != hi {
						ok = false
						break
					}
				}
			}
			tally(tr, r.Result, agent.View(), ok)
		}
	} else {
		cfg.BatchSteps = engine == "count-batched"
		runs, err := sim.RunCountTrials(func(tr int) sim.CountProtocol {
			specs[tr] = core.NewApproximateSpec(core.Config{N: n})
			return sim.NewSpecCount(specs[tr].Spec)
		}, trials, cfg, sim.CountTrialOptions{Parallelism: par})
		if err != nil {
			panic(err)
		}
		for tr, r := range runs {
			countEngineStats(r.Engine.Stats())
			ok := false
			if r.Result.Converged {
				out, has := r.Engine.PluralityOutput()
				ok = has && (out == lo || out == hi)
			}
			tally(tr, r.Result, r.Engine.Counts(), ok)
		}
	}
	countTrials(int64(trials), int64(conv), interactions)
	mean = stats.Mean(norms)
	tbl.AddRow(itoa(n), engine, itoa(trials), pct(float64(correct)/float64(trials)),
		f2(mean/nLog2N(n)), itoa(maxK), itoa(maxLvl))
	return mean
}

// E9StableApproximate reproduces Theorem 1.2: the hybrid stable variant
// stabilizes correctly both on the clean path and under fault
// injection. Both engine columns derive from one transition spec
// (core.NewStableApproximateSpec); the fault-injected rows stay on the
// agent engine — the backup runs Θ(n² log² n) interactions over a
// scattered pile alphabet, exactly the regime the batch planner's
// amortization gate degrades to exact per-interaction stepping (the
// standalone backup specs in E13/E14, which opt into the skip path,
// are the count-engine form of that phase).
func E9StableApproximate(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E9",
		Title:   "stable protocol Approximate (Algorithm 7 + backup)",
		Claim:   "Theorem 1.2: always correct; w.h.p. stabilizes in O(n log² n) with O(log² n·log log n) states",
		Columns: []string{"n", "mode", "engine", "trials", "correct", "error raised", "T/(n ln² n) mean"},
	}
	ns := o.sizes([]int{512, 1024}, []int{300})
	for _, n := range ns {
		for _, mode := range []string{"clean", "fault-injected"} {
			fault := mode == "fault-injected"
			engines := []string{"agent"}
			if !fault {
				engines = append(engines, "count", "count-batched")
			}
			var capI int64
			if fault {
				capI = int64(n) * int64(n) * 800 // backup needs Θ(n² log² n)
			}
			for _, engine := range engines {
				stableApproxEngineRow(&tbl, n, mode, engine, o.trials(4),
					o.Parallelism, o.Seed+uint64(5*n), capI)
			}
		}
	}
	tbl.AddNote("fault injection corrupts the leader's k by −4; errors must fire on every faulted run and on (almost) no clean run")
	tbl.AddNote("both engine columns derive from one transition spec; fault rows are agent-only (see the doc comment)")
	return tbl
}

// stableApproxEngineRow runs one (n, mode, engine) cell of E9 and
// appends its row.
func stableApproxEngineRow(tbl *Table, n int, mode, engine string, trials, par int, seed uint64, capI int64) {
	fault := mode == "fault-injected"
	lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
	conv, correct, errored := 0, 0, 0
	var norms []float64
	var interactions int64
	specs := make([]*core.StableApproximateSpec, trials)
	cfg := sim.Config{Seed: seed, CheckEvery: int64(n), MaxInteractions: capI}
	cells := runSpecCells(func(tr int) *sim.Spec {
		specs[tr] = core.NewStableApproximateSpec(core.Config{N: n}, fault)
		return specs[tr].Spec
	}, engine, trials, par, cfg)
	for tr, r := range cells {
		var out int64
		var raised bool
		if r.agent != nil {
			out = r.agent.Output(0)
			raised = r.agent.Errored()
		} else {
			out, _ = r.eng.PluralityOutput()
			raised = specs[tr].Spec.Errored(r.eng.Counts())
		}
		interactions += r.res.Total
		if raised {
			errored++
		}
		if r.res.Converged {
			conv++
			norms = append(norms, float64(r.res.Interactions)/nLog2N(n))
			if fault {
				// After the backup path only ⌊log n⌋ is possible.
				if out == lo {
					correct++
				}
			} else if out == lo || out == hi {
				correct++
			}
		}
	}
	countTrials(int64(trials), int64(conv), interactions)
	tbl.AddRow(itoa(n), mode, engine, itoa(trials),
		pct(float64(correct)/float64(trials)),
		pct(float64(errored)/float64(trials)), f2(stats.Mean(norms)))
}

// CountExactSuite runs protocol CountExact once per (n, trial) and
// derives the three related tables E10 (Lemma 10), E11 (Lemma 11) and
// E12 (Theorem 2) from the same runs.
func CountExactSuite(o Options) (e10, e11, e12 Table) {
	o = o.withDefaults()
	ns := o.sizes([]int{1 << 9, 1 << 11, 1 << 13, 10000}, []int{1 << 9, 1 << 11})

	e10 = Table{
		ID:      "E10",
		Title:   "Approximation Stage (Algorithm 4)",
		Claim:   "Lemma 10: k = log n ± 3 after O(n log n) interactions",
		Columns: []string{"n", "trials", "|k − log n| ≤ 3", "k−log n (min..max)"},
	}
	e11 = Table{
		ID:      "E11",
		Title:   "Refinement Stage (Algorithm 5)",
		Claim:   "Lemma 11: all agents output ω(v) = n after O(n log n) interactions",
		Columns: []string{"n", "trials", "all agents exact"},
	}
	e12 = Table{
		ID:      "E12",
		Title:   "protocol CountExact (Algorithm 3)",
		Claim:   "Theorem 2: exact n; stabilizes in O(n log n); Õ(n) states",
		Columns: []string{"n", "trials", "exact", "T/(n ln n) mean", "max load/n²"},
	}

	var fitN []int
	var fitT []float64
	for _, n := range ns {
		outs := runMany(func(int) sim.Protocol { return core.NewCountExact(core.Config{N: n}) },
			o.trials(2), sim.Config{Seed: o.Seed + uint64(7*n)}, o.Parallelism)

		// E10: quality of the approximation k.
		logn := math.Log2(float64(n))
		okK := 0
		minD, maxD := math.Inf(1), math.Inf(-1)
		for _, out := range outs {
			d := float64(out.p.(*core.CountExact).Metrics().MaxK) - logn
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
			if math.Abs(d) <= 3 {
				okK++
			}
		}
		e10.AddRow(itoa(n), itoa(len(outs)), pct(float64(okK)/float64(len(outs))),
			f2(minD)+".."+f2(maxD))

		// E11 and E12: exactness, time and state usage.
		exact := 0
		var maxLoadRatio float64
		for _, out := range outs {
			p := out.p.(*core.CountExact)
			if out.res.Converged && allExact(p, n) {
				exact++
			}
			if r := float64(p.Metrics().MaxLoad) / (float64(n) * float64(n)); r > maxLoadRatio {
				maxLoadRatio = r
			}
		}
		exactRate := pct(float64(exact) / float64(len(outs)))
		e11.AddRow(itoa(n), itoa(len(outs)), exactRate)
		norms := normTimes(outs, nLogN(n))
		e12.AddRow(itoa(n), itoa(len(outs)), exactRate, f2(stats.Mean(norms)), f1(maxLoadRatio))
		fitN = append(fitN, n)
		fitT = append(fitT, meanInteractions(outs))
	}
	fitNote(&e12, fitN, fitT, "≈1 (×log n)")
	return e10, e11, e12
}

// E10ApproxStage reproduces Lemma 10 (runs the shared CountExact suite).
func E10ApproxStage(o Options) Table { t, _, _ := CountExactSuite(o); return t }

// E11Refine reproduces Lemma 11 (runs the shared CountExact suite).
func E11Refine(o Options) Table { _, t, _ := CountExactSuite(o); return t }

// E12CountExact reproduces Theorem 2 (runs the shared CountExact suite).
func E12CountExact(o Options) Table { _, _, t := CountExactSuite(o); return t }

// backupEngineRows runs one backup experiment cell per engine from one
// spec: the agent column via the spec's agent adapter, the count and
// batched columns via its count form. The backup protocols' Θ(n²·…)
// interaction counts are where the count engine's skip path shines —
// the no-op-dominated equilibrium reduces the run to roughly the number
// of merges — so the count columns also extend the sweep beyond the
// agent-practical sizes.
func backupEngineRows(tbl *Table, mkSpec func() *sim.Spec, n int, engine string,
	trials, par int, seed uint64, capI int64, denom float64) {
	conv := 0
	var norms []float64
	var interactions int64
	cfg := sim.Config{Seed: seed, CheckEvery: int64(n), MaxInteractions: capI}
	for _, r := range runSpecCells(func(int) *sim.Spec { return mkSpec() }, engine, trials, par, cfg) {
		interactions += r.res.Total
		if r.res.Converged {
			conv++
			norms = append(norms, float64(r.res.Interactions)/denom)
		}
	}
	countTrials(int64(trials), int64(conv), interactions)
	tbl.AddRow(itoa(n), engine, itoa(trials), pct(float64(conv)/float64(trials)), f2(stats.Mean(norms)))
}

// E13BackupApprox reproduces Lemma 12: the approximate backup converges
// to the binary representation of n within O(n² log² n) interactions.
// All engine columns derive from backup.NewApproxSpec.
func E13BackupApprox(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E13",
		Title:   "backup protocol for approximate counting (Appendix C.1)",
		Claim:   "Lemma 12: |K_i| = n_i, kmax = ⌊log n⌋ everywhere; O(n² log² n) interactions; ≤ (log n+1)² states",
		Columns: []string{"n", "engine", "trials", "binary rep ok", "T/(n² ln n) mean"},
	}
	ns := o.sizes([]int{13, 32, 100, 256}, []int{13, 64})
	for _, n := range ns {
		for _, engine := range []string{"agent", "count", "count-batched"} {
			backupEngineRows(&tbl, func() *sim.Spec { return backup.NewApproxSpec(n) },
				n, engine, o.trials(2), o.Parallelism, o.Seed+uint64(n),
				int64(n)*int64(n)*2000, n2LogN(n))
		}
	}
	if len(o.Sizes) == 0 && !o.Quick {
		// The count engine's skip path turns the Θ(n² log² n) run into
		// ~#merges: sizes far past the agent column become cheap.
		backupEngineRows(&tbl, func() *sim.Spec { return backup.NewApproxSpec(4096) },
			4096, "count", 2, o.Parallelism, o.Seed+4096, int64(4096)*int64(4096)*2000, n2LogN(4096))
	}
	tbl.AddNote("all engine columns derive from one transition spec (backup.NewApproxSpec)")
	return tbl
}

// E14BackupExact reproduces Lemma 13: the exact backup outputs n within
// O(n² log n) interactions. All engine columns derive from
// backup.NewExactSpec.
func E14BackupExact(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E14",
		Title:   "backup protocol for exact counting (Appendix C.2)",
		Claim:   "Lemma 13: every agent outputs n; O(n² log n) interactions",
		Columns: []string{"n", "engine", "trials", "exact", "T/(n² ln n) mean"},
	}
	ns := o.sizes([]int{16, 64, 256, 512}, []int{16, 128})
	for _, n := range ns {
		for _, engine := range []string{"agent", "count", "count-batched"} {
			backupEngineRows(&tbl, func() *sim.Spec { return backup.NewExactSpec(n) },
				n, engine, o.trials(2), o.Parallelism, o.Seed+uint64(n),
				int64(n)*int64(n)*1000, n2LogN(n))
		}
	}
	if len(o.Sizes) == 0 && !o.Quick {
		backupEngineRows(&tbl, func() *sim.Spec { return backup.NewExactSpec(8192) },
			8192, "count", 2, o.Parallelism, o.Seed+8192, int64(8192)*int64(8192)*1000, n2LogN(8192))
	}
	tbl.AddNote("all engine columns derive from one transition spec (backup.NewExactSpec)")
	return tbl
}

// E15Baselines compares CountExact against the Θ(n²) token-bag baseline
// (Section 1's simple uniform protocol) and Approximate against the
// geometric-maximum estimator.
func E15Baselines(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E15",
		Title:   "baseline comparison",
		Claim:   "Section 1: CountExact (O(n log n)) vs token bags (Θ(n²)); Approximate (⌊log n⌋/⌈log n⌉) vs geometric estimator (log n ± O(1))",
		Columns: []string{"n", "bag T mean", "CountExact T mean", "speedup", "geo |err| mean", "Approx |err| mean"},
	}
	ns := o.sizes([]int{1024, 4096, 8192, 16384}, []int{1024, 4096})
	for _, n := range ns {
		trials := o.trials(2)
		bag := runMany(func(int) sim.Protocol { return baseline.NewTokenBag(n) },
			trials, sim.Config{Seed: o.Seed + uint64(n), MaxInteractions: int64(n) * int64(n) * 200}, o.Parallelism)
		exact := runMany(func(int) sim.Protocol { return core.NewCountExact(core.Config{N: n}) },
			trials, sim.Config{Seed: o.Seed + uint64(2*n)}, o.Parallelism)
		geo := runMany(func(int) sim.Protocol { return sim.NewSpecAgent(baseline.NewGeometricSpec(n)) },
			trials, sim.Config{Seed: o.Seed + uint64(3*n)}, o.Parallelism)
		apx := runMany(func(int) sim.Protocol { return core.NewApproximate(core.Config{N: n}) },
			trials, sim.Config{Seed: o.Seed + uint64(4*n)}, o.Parallelism)

		bagT := meanInteractions(bag)
		exactT := meanInteractions(exact)
		logn := math.Log2(float64(n))
		var geoErr, apxErr []float64
		for _, out := range geo {
			if out.res.Converged {
				geoErr = append(geoErr, math.Abs(float64(out.p.(*sim.SpecAgent).Output(0))-logn))
			}
		}
		for _, out := range apx {
			if out.res.Converged {
				apxErr = append(apxErr, math.Abs(float64(out.p.(*core.Approximate).Output(0))-logn))
			}
		}
		speedup := "n/a"
		if exactT > 0 {
			speedup = f1(bagT / exactT)
		}
		tbl.AddRow(itoa(n), f1(bagT), f1(exactT), speedup,
			f2(stats.Mean(geoErr)), f2(stats.Mean(apxErr)))
	}

	// Large-n extension: the geometric estimator alone, on the batched
	// count engine, whose multinomial coin-phase pre-sampling makes
	// population sizes far beyond the agent-level comparison reachable
	// — the other columns have no protocol at this scale. A Sizes
	// override scopes the table to exactly the requested sweep.
	var bigNs []int
	if len(o.Sizes) == 0 {
		bigNs = []int{1e8}
		if o.Quick {
			bigNs = []int{1 << 20}
		}
	}
	for _, n := range bigNs {
		geoErr := geoBatchedError(n, 2, o.Seed)
		// The Approximate column is a full composed-protocol run (~100 s
		// at n = 10⁸, ~5 s even at the quick 2²⁰) — worth it for the
		// recorded full table, not for the fast default suite.
		apxErr := "n/a"
		if !o.Quick {
			apxErr = f2(apxBatchedError(n, o.Seed))
		}
		tbl.AddRow(itoa(n), "n/a", "n/a", "n/a", f2(geoErr), apxErr)
	}
	tbl.AddNote("speedup must grow like n/log n; the error of Approximate is below 1 by construction")
	tbl.AddNote("the large-n rows run on the batched count engine — the geometric estimator via the" +
		" multinomial coin phase, Approximate via its interned spec (the other columns are agent-level" +
		" and stop at the sweep sizes above)")
	return tbl
}

// apxBatchedError runs protocol Approximate on the batched count
// engine and returns |consensus k − log₂ n| (one trial; the protocol's
// answer is deterministic up to the ⌊·⌋/⌈·⌉ choice).
func apxBatchedError(n int, seed uint64) float64 {
	spec := core.NewApproximateSpec(core.Config{N: n})
	eng, err := sim.NewCountEngine(sim.NewSpecCount(spec.Spec),
		sim.Config{Seed: seed + uint64(n), CheckEvery: int64(n), BatchSteps: true})
	if err != nil {
		panic(err)
	}
	res, err := eng.RunToConvergence()
	if err != nil {
		panic(err)
	}
	countTrials(1, boolToInt64(res.Converged), res.Total)
	countEngineStats(eng.Stats())
	if !res.Converged {
		return math.NaN()
	}
	out, _ := eng.PluralityOutput()
	return math.Abs(float64(out) - math.Log2(float64(n)))
}

// geoBatchedError runs the geometric estimator on the batched count
// engine and returns the mean |estimate − log₂ n| over trials.
func geoBatchedError(n, trials int, seed uint64) float64 {
	logn := math.Log2(float64(n))
	var errs []float64
	for tr := 0; tr < trials; tr++ {
		eng, err := sim.NewCountEngine(sim.NewSpecCount(baseline.NewGeometricSpec(n)),
			sim.Config{Seed: sim.TrialSeed(seed+uint64(n), tr), CheckEvery: int64(n) / 4, BatchSteps: true})
		if err != nil {
			panic(err)
		}
		res, err := eng.RunToConvergence()
		if err != nil {
			panic(err)
		}
		countTrials(1, boolToInt64(res.Converged), res.Total)
		countEngineStats(eng.Stats())
		if !res.Converged {
			continue
		}
		if out, ok := eng.PluralityOutput(); ok {
			errs = append(errs, math.Abs(float64(out)-logn))
		}
	}
	return stats.Mean(errs)
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// allExact reports whether every agent of p outputs exactly n.
func allExact(p *core.CountExact, n int) bool {
	for i := 0; i < n; i++ {
		if p.Output(i) != int64(n) {
			return false
		}
	}
	return true
}

package exp

import (
	"fmt"
	"strings"

	"popcount/internal/baseline"
	"popcount/internal/core"
	"popcount/internal/epidemic"
	"popcount/internal/leader"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Series is a time series ("figure" data): one x column (interactions)
// and one or more named y columns, rendered as CSV. The paper has no
// printed figures, so these regenerate the curves its analysis describes
// — the logistic epidemic wavefront, the leader-count decay, the
// doubling staircase of the search, and the settling of the exact count.
type Series struct {
	ID      string
	Title   string
	Headers []string // y column names
	T       []int64
	Y       [][]float64 // Y[i] is the row of y values at T[i]
}

// CSV renders the series with an "interactions" x column.
func (s Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", s.ID, s.Title)
	b.WriteString("interactions")
	for _, h := range s.Headers {
		b.WriteString(",")
		b.WriteString(h)
	}
	b.WriteByte('\n')
	for i, t := range s.T {
		fmt.Fprintf(&b, "%d", t)
		for _, y := range s.Y[i] {
			fmt.Fprintf(&b, ",%g", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sample runs protocol p for maxT interactions, recording probe values
// every step interactions.
func sample(p sim.Protocol, seed uint64, maxT, step int64, headers []string,
	probe func() []float64) Series {
	s := Series{Headers: headers}
	r := rng.New(seed)
	n := p.N()
	for t := int64(0); t < maxT; t += step {
		for i := int64(0); i < step; i++ {
			u, v := r.Pair(n)
			p.Interact(u, v, r)
		}
		s.T = append(s.T, t+step)
		s.Y = append(s.Y, probe())
	}
	return s
}

// F1EpidemicCurve regenerates the one-way epidemic's informed-count
// curve (the logistic wavefront behind Lemma 3).
func F1EpidemicCurve(o Options) Series {
	o = o.withDefaults()
	n := 1 << 12
	if len(o.Sizes) > 0 {
		n = o.Sizes[0]
	}
	spec := epidemic.NewSingleSourceSpec(n, true)
	p := sim.NewSpecAgent(spec)
	maxCode := epidemic.MaxCode(spec)
	s := sample(p, o.Seed, int64(3*nLogN(n)), int64(n)/4,
		[]string{"informed", "informed_fraction"},
		func() []float64 {
			informed := float64(p.StateCount(maxCode))
			return []float64{informed, informed / float64(n)}
		})
	s.ID, s.Title = "F1", fmt.Sprintf("one-way epidemic wavefront, n=%d (Lemma 3)", n)
	return s
}

// F2LeaderDecay regenerates the contender-count decay of both leader
// elections (the halving behind Lemmas 6 and 7).
func F2LeaderDecay(o Options) Series {
	o = o.withDefaults()
	n := 1 << 12
	if len(o.Sizes) > 0 {
		n = o.Sizes[0]
	}
	j := 2 * sim.Log2Ceil(n)
	slow := leader.NewProtocol(n, 32, j)
	fast := leader.NewFastProtocol(n, 32, j, leader.DefaultFastRounds)
	rSlow := rng.New(o.Seed)
	rFast := rng.New(o.Seed + 1)
	s := Series{
		ID:      "F2",
		Title:   fmt.Sprintf("leader contender decay, n=%d (Lemmas 6–7)", n),
		Headers: []string{"slow_leaders", "fast_leaders"},
	}
	step := int64(n)
	for t := int64(0); t < int64(60*nLogN(n)); t += step {
		for i := int64(0); i < step; i++ {
			u, v := rSlow.Pair(n)
			slow.Interact(u, v, rSlow)
			u, v = rFast.Pair(n)
			fast.Interact(u, v, rFast)
		}
		s.T = append(s.T, t+step)
		s.Y = append(s.Y, []float64{float64(slow.Leaders()), float64(fast.Leaders())})
	}
	return s
}

// F3EstimateTrajectory regenerates the Search Protocol's doubling
// staircase: agent 0's population estimate over time in protocol
// Approximate (Lemma 9 / Theorem 1.1).
func F3EstimateTrajectory(o Options) Series {
	o = o.withDefaults()
	n := 1 << 12
	if len(o.Sizes) > 0 {
		n = o.Sizes[0]
	}
	p := core.NewApproximate(core.Config{N: n})
	s := sample(p, o.Seed, int64(200*nLog2N(n)/10), int64(4*n),
		[]string{"agent0_estimate", "true_n"},
		func() []float64 {
			return []float64{float64(p.Estimate(0)), float64(n)}
		})
	s.ID, s.Title = "F3", fmt.Sprintf("search staircase of protocol Approximate, n=%d", n)
	return s
}

// F4ExactSettling regenerates the settling of CountExact's output next
// to the token-bag baseline's slow climb (Theorem 2 vs the Θ(n²)
// baseline).
func F4ExactSettling(o Options) Series {
	o = o.withDefaults()
	n := 1 << 11
	if len(o.Sizes) > 0 {
		n = o.Sizes[0]
	}
	ce := core.NewCountExact(core.Config{N: n})
	bag := baseline.NewTokenBag(n)
	rCE := rng.New(o.Seed)
	rBag := rng.New(o.Seed + 1)
	s := Series{
		ID:      "F4",
		Title:   fmt.Sprintf("output settling: CountExact vs token bags, n=%d", n),
		Headers: []string{"countexact_agent0", "tokenbag_agent0", "true_n"},
	}
	step := int64(2 * n)
	for t := int64(0); t < int64(n)*int64(n); t += step {
		for i := int64(0); i < step; i++ {
			u, v := rCE.Pair(n)
			ce.Interact(u, v, rCE)
			u, v = rBag.Pair(n)
			bag.Interact(u, v, rBag)
		}
		s.T = append(s.T, t+step)
		s.Y = append(s.Y, []float64{
			float64(ce.Output(0)), float64(bag.Output(0)), float64(n),
		})
		if ce.Converged() && bag.Converged() {
			break
		}
	}
	return s
}

// Figures returns all figure series.
func Figures(o Options) []Series {
	return []Series{
		F1EpidemicCurve(o),
		F2LeaderDecay(o),
		F3EstimateTrajectory(o),
		F4ExactSettling(o),
	}
}

package exp

import (
	"fmt"
	"time"

	"popcount/internal/backup"
	"popcount/internal/balance"
	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/core"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// E18CountEngine measures the count-based engine (sim.CountEngine): for
// each adapted protocol it runs both engines at small n — where the
// agent engine is still practical — and the count engine alone at the
// large n the agent engine cannot reach, reporting wall-clock time and
// effective interactions/sec. This extends the paper with an engineering
// result: the configuration view drops simulation cost from Θ(n log n)
// scheduler draws to roughly the number of state-changing interactions,
// unlocking n = 10⁸ for the skip-path protocols. Both engine forms
// derive from the same transition spec (sim.Spec), so the rows also
// exercise the spec layer end to end.
func E18CountEngine(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E18",
		Title: "count-based engine scaling",
		Claim: "extension: configuration-level simulation is distributionally exact and reaches n = 10⁸",
		Columns: []string{"protocol", "engine", "n", "trials", "conv",
			"T_C mean", "wall s/run", "interactions/s"},
	}

	type row struct {
		proto  string
		engine string
		n      int
	}
	var rows []row
	if o.Quick {
		for _, n := range o.sizes(nil, []int{1 << 12, 1 << 16}) {
			rows = append(rows,
				row{"epidemic", "agent", n},
				row{"epidemic", "count", n},
				row{"junta", "count", n},
			)
		}
	} else {
		for _, n := range o.sizes([]int{1e4, 1e5, 1e6}, nil) {
			rows = append(rows, row{"epidemic", "agent", n})
		}
		for _, n := range o.sizes([]int{1e4, 1e5, 1e6, 1e7, 1e8}, nil) {
			rows = append(rows,
				row{"epidemic", "count", n},
				row{"junta", "count", n},
				row{"geometric", "count", n},
			)
		}
		rows = append(rows, row{"leader", "agent", 1e4}, row{"leader", "count", 1e4})
		if len(o.Sizes) == 0 {
			// The spec ports of this PR: powers-of-two balancing (skip
			// path; Lemma 8's Θ(n log n) run collapses to ~n splits) and
			// the exact backup (Θ(n² log n) collapses to ~n merges plus
			// broadcasts) scale to sizes their agent forms cannot touch.
			// The backup stops at n = 10⁵: its merge chain discovers ~2n
			// distinct count values, and the skip path's no-op adjacency
			// is O(discovered²) to build — the quadratic wall past which
			// the configuration view stops paying for this protocol.
			rows = append(rows,
				row{"powers", "count", 1e6}, row{"powers", "count", 1e8},
				row{"backup-exact", "count", 1e4}, row{"backup-exact", "count", 1e5},
			)
		}
	}

	for _, rw := range rows {
		trials := o.trials(1)
		if rw.n >= 1e7 {
			trials = 1
		}
		cfg := sim.Config{Seed: o.Seed + uint64(rw.n), CheckEvery: int64(rw.n) / 4}
		if rw.proto == "leader" {
			cfg.CheckEvery = int64(rw.n)
		}
		if rw.proto == "backup-exact" {
			// Lemma 13 needs Θ(n² log n) interactions — beyond the
			// engine's generous n·polylog default cap. The skip path
			// makes the horizon cheap regardless (the run is ~n merges
			// plus broadcasts).
			cfg.MaxInteractions = int64(rw.n) * int64(rw.n) * 1000
		}
		runEngineRows(&tbl, rw.proto, rw.engine, rw.n, trials, cfg, false)
	}
	tbl.AddNote("count-engine results are distributionally equivalent to the agent engine" +
		" (see TestCountEngineEquivalence*); runs are not bit-for-bit comparable across engines")
	return tbl
}

// runEngineRows runs one (protocol, engine, n) cell of E18/E19 and
// appends its result row, tallying the deterministic run counters.
func runEngineRows(tbl *Table, proto, engine string, n, trials int, cfg sim.Config, batched bool) {
	var norms []float64
	conv := 0
	start := time.Now()
	var interactions int64
	for tr := 0; tr < trials; tr++ {
		c := cfg
		c.Seed = sim.TrialSeed(cfg.Seed, tr)
		c.BatchSteps = batched
		var res sim.Result
		var err error
		if engine == "agent" {
			res, err = sim.Run(sim.NewSpecAgent(protoSpec(proto, n)), c)
		} else {
			var eng *sim.CountEngine
			eng, err = sim.NewCountEngine(sim.NewSpecCount(protoSpec(proto, n)), c)
			if err == nil {
				res, err = eng.RunToConvergence()
				countEngineStats(eng.Stats())
			}
		}
		if err != nil {
			panic(err) // sizes are static; an error is a programming bug
		}
		interactions += res.Total
		if res.Converged {
			conv++
			norms = append(norms, float64(res.Interactions))
		}
	}
	wall := time.Since(start).Seconds() / float64(trials)
	countTrials(int64(trials), int64(conv), interactions)
	ips := float64(interactions) / (wall * float64(trials))
	tbl.AddRow(proto, engine, itoa(n), itoa(trials),
		pct(float64(conv)/float64(trials)), f1(stats.Mean(norms)),
		fmt.Sprintf("%.4g", wall), fmt.Sprintf("%.3g", ips))
}

// protoSpec builds the transition spec of a protocol for the
// engine-column experiments (E8/E9/E13–E19) — the one definition every
// engine column derives its form from.
func protoSpec(proto string, n int) *sim.Spec {
	switch proto {
	case "epidemic":
		return epidemic.NewSingleSourceSpec(n, true)
	case "junta":
		return junta.NewSpec(n)
	case "geometric":
		return baseline.NewGeometricSpec(n)
	case "leader":
		return leader.NewSpec(n, clock.DefaultM, 2*sim.Log2Ceil(n))
	case "powers":
		return balance.NewPowersSpec(n, sim.Log2Floor(3*n/4), true)
	case "backup-exact":
		return backup.NewExactSpec(n)
	case "approximate":
		return core.NewApproximateSpec(core.Config{N: n}).Spec
	case "exact":
		return core.NewCountExactSpec(core.Config{N: n}).Spec
	default:
		panic("exp: unknown protocol " + proto)
	}
}

package exp

import (
	"popcount/internal/clock"
	"popcount/internal/core"
	"popcount/internal/leader"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// A1ClockPeriod ablates the phase-clock constant m in protocol
// Approximate: too-short phases break the Search Protocol's per-phase
// sub-routines (broadcast, load balancing), longer phases cost time
// linearly — the trade-off behind Lemma 5's m = m(c).
func A1ClockPeriod(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "A1",
		Title:   "ablation: phase-clock constant m (protocol Approximate)",
		Claim:   "Lemma 5: phases must be long enough for Lemmas 3 and 8; length is linear in m",
		Columns: []string{"n", "m", "trials", "correct", "T/(n ln² n) mean"},
	}
	ns := o.sizes([]int{1024, 4096}, []int{512})
	for _, n := range ns {
		for _, m := range []int{8, 16, 32, 64} {
			// Cap the budget explicitly: misconfigured clocks (m too
			// small) never converge and would otherwise burn the
			// engine's generous default.
			capI := int64(600 * nLog2N(n))
			outs := runMany(func(int) sim.Protocol {
				return core.NewApproximate(core.Config{N: n, ClockM: m})
			}, o.trials(4), sim.Config{Seed: o.Seed + uint64(n*m), MaxInteractions: capI}, o.Parallelism)
			lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
			correct := 0
			for _, out := range outs {
				if !out.res.Converged {
					continue
				}
				if v := out.p.(*core.Approximate).Output(0); v == lo || v == hi {
					correct++
				}
			}
			norms := normTimes(outs, nLog2N(n))
			tbl.AddRow(itoa(n), itoa(m), itoa(len(outs)),
				pct(float64(correct)/float64(len(outs))), f2(stats.Mean(norms)))
		}
	}
	tbl.AddNote("small m may reduce correctness (balancing does not finish within a phase); larger m raises time linearly")
	return tbl
}

// A2Shift ablates the junta-level exponent shift of CountExact's
// Approximation Stage: smaller shifts mean bigger per-phase load
// explosions (fewer phases, coarser k), larger shifts the opposite.
func A2Shift(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "A2",
		Title:   "ablation: load-explosion shift (CountExact, Algorithm 4)",
		Claim:   "Lemma 10: ι = O(1/η) phases with k = log n ± 3 for any constant η",
		Columns: []string{"n", "shift", "trials", "exact", "T/(n ln n) mean"},
	}
	ns := o.sizes([]int{1024, 4096}, []int{512})
	for _, n := range ns {
		for _, shift := range []int{1, 2, 3, 4, 5} {
			outs := runMany(func(int) sim.Protocol {
				return core.NewCountExact(core.Config{N: n, Shift: shift})
			}, o.trials(4), sim.Config{Seed: o.Seed + uint64(n*shift)}, o.Parallelism)
			exact := 0
			for _, out := range outs {
				if out.res.Converged && allExact(out.p.(*core.CountExact), n) {
					exact++
				}
			}
			norms := normTimes(outs, nLogN(n))
			tbl.AddRow(itoa(n), itoa(shift), itoa(len(outs)),
				pct(float64(exact)/float64(len(outs))), f2(stats.Mean(norms)))
		}
	}
	return tbl
}

// A3FastLeaderRounds ablates the number of sample/broadcast rounds of
// FastLeaderElection: fewer rounds raise the multi-leader probability.
func A3FastLeaderRounds(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "A3",
		Title:   "ablation: FastLeaderElection rounds",
		Claim:   "Lemma 7: collision probability ≈ n²·2^(−rounds·bits); a constant number of rounds suffices",
		Columns: []string{"n", "rounds", "trials", "unique leader", "T/(n ln n) mean"},
	}
	ns := o.sizes([]int{1024, 8192}, []int{512})
	for _, n := range ns {
		for _, rounds := range []int{1, 2, 3, 4} {
			outs := runMany(func(int) sim.Protocol {
				return leader.NewFastProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), rounds)
			}, o.trials(2), sim.Config{
				Seed:            o.Seed + uint64(n*rounds),
				MaxInteractions: int64(nLogN(n)) * 400,
			}, o.Parallelism)
			unique := 0
			for _, out := range outs {
				if out.res.Converged && out.p.(*leader.FastProtocol).Leaders() == 1 {
					unique++
				}
			}
			norms := normTimes(outs, nLogN(n))
			tbl.AddRow(itoa(n), itoa(rounds), itoa(len(outs)),
				pct(float64(unique)/float64(len(outs))), f2(stats.Mean(norms)))
		}
	}
	return tbl
}

package exp

import (
	"popcount/internal/sim"
)

// E19BatchedEngine measures the count engine's multinomial batch-
// stepping mode (sim.Config.BatchSteps, countbatch.go) against exact
// sequential count stepping: per protocol it runs both modes at sizes
// where the sequential engine is comfortable and the batched mode alone
// at the n = 10⁹ scale only sub-interaction stepping reaches. The
// batched rows are a drift-bounded τ-leaping approximation —
// distributionally faithful within a few percent (see the batched
// equivalence tests) — so T_C means must agree with the sequential rows
// while wall-clock per interaction collapses by orders of magnitude on
// the epidemic-style chains. The geometric estimator's coin phase is
// pre-sampled by the spec's multinomial initialization sampler
// (baseline.NewGeometricSpec), which is what makes its rule
// deterministic and its n ≥ 10⁸ rows batchable at all.
func E19BatchedEngine(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E19",
		Title: "multinomial batch-stepping scaling",
		Claim: "extension: τ-leaping over the configuration reaches n = 10⁹ at o(1) cost per interaction",
		Columns: []string{"protocol", "engine", "n", "trials", "conv",
			"T_C mean", "wall s/run", "interactions/s"},
	}

	type row struct {
		proto   string
		batched bool
		n       int
	}
	var rows []row
	if o.Quick {
		for _, n := range o.sizes(nil, []int{1 << 12, 1 << 16}) {
			rows = append(rows,
				row{"epidemic", false, n},
				row{"epidemic", true, n},
				row{"junta", true, n},
			)
		}
		rows = append(rows, row{"epidemic", true, 1 << 20}, row{"geometric", true, 1 << 20})
	} else {
		for _, n := range o.sizes([]int{1e6, 1e8}, nil) {
			rows = append(rows, row{"epidemic", false, n})
		}
		for _, n := range o.sizes([]int{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, nil) {
			rows = append(rows, row{"epidemic", true, n})
		}
		rows = append(rows,
			row{"junta", false, 1e6},
			row{"junta", true, 1e6},
			row{"junta", true, 1e8},
			row{"geometric", false, 1e7},
			row{"geometric", true, 1e7},
			row{"geometric", true, 1e8},
			row{"geometric", true, 1e9},
		)
		if len(o.Sizes) == 0 {
			// The headline of the core-protocol spec port: the full
			// composed Approximate — junta, phase clock, slow leader
			// election, search, broadcast — batched over its interned
			// configuration to n = 10⁸ (Θ(n log² n) ≈ 3·10¹²
			// interactions in minutes).
			rows = append(rows,
				row{"approximate", true, 1e6},
				row{"approximate", true, 1e8},
			)
		}
	}

	for _, rw := range rows {
		trials := o.trials(1)
		if rw.n >= 1e7 {
			trials = 1
		}
		engine := "count"
		if rw.batched {
			engine = "count-batched"
		}
		cfg := sim.Config{
			Seed:       o.Seed + uint64(rw.n),
			CheckEvery: int64(rw.n) / 4,
		}
		runEngineRows(&tbl, rw.proto, engine, rw.n, trials, cfg, rw.batched)
	}
	tbl.AddNote("count-batched rows are drift-bounded τ-leaping (default drift 0.125): " +
		"distributionally faithful (TestCountEngineEquivalence* batched rows, TestCountBatchEquivalence), " +
		"not bit-for-bit comparable to the sequential count rows")
	tbl.AddNote("the geometric estimator's Θ(n) coin phase is pre-sampled as one multinomial " +
		"(O(log n) binomials) at engine start, so its rule is deterministic and fully batchable")
	return tbl
}

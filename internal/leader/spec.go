package leader

import (
	"popcount/internal/clock"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// cstate is the per-agent state tuple of the leader_elect spec: the
// inner phase-clock value, the election state, the outer clock value
// with its phase counter capped at 1 (only Outer.Phase ≥ 1 is ever read
// — it raises leaderDone), and the fixed junta membership. The inner
// clock's absolute phase counter is never read by the election (only
// FirstTick and the value-derived phase index are), so it is not part of
// the code and the alphabet stays finite.
type cstate struct {
	innerVal   uint16
	tag        uint8
	bit        uint8
	seenMax    uint8
	isLeader   bool
	done       bool
	outerVal   uint16
	outerPhase uint8 // capped at 1
	junta      bool
}

// specCodec packs cstate tuples into spec state codes by mixed-radix
// composition.
type specCodec struct {
	elect   Election
	spanOut uint64
}

// encode packs a cstate into a code.
func (p specCodec) encode(s cstate) uint64 {
	c := uint64(s.innerVal)
	c = c*uint64(p.elect.Inner.K) + uint64(s.tag)
	c = c*2 + uint64(s.bit)
	c = c*2 + uint64(s.seenMax)
	c = c * 2
	if s.isLeader {
		c++
	}
	c = c * 2
	if s.done {
		c++
	}
	c = c*p.spanOut + uint64(s.outerVal)
	c = c*2 + uint64(s.outerPhase)
	c = c * 2
	if s.junta {
		c++
	}
	return c
}

// decode unpacks a code.
func (p specCodec) decode(c uint64) cstate {
	var s cstate
	s.junta = c&1 != 0
	c >>= 1
	s.outerPhase = uint8(c & 1)
	c >>= 1
	s.outerVal = uint16(c % p.spanOut)
	c /= p.spanOut
	s.done = c&1 != 0
	c >>= 1
	s.isLeader = c&1 != 0
	c >>= 1
	s.seenMax = uint8(c & 1)
	c >>= 1
	s.bit = uint8(c & 1)
	c >>= 1
	s.tag = uint8(c % uint64(p.elect.Inner.K))
	c /= uint64(p.elect.Inner.K)
	s.innerVal = uint16(c)
	return s
}

// delta applies one leader_elect transition — inner clock tick, then
// election step — to a state pair, mirroring Protocol.Interact. Coins
// for the per-phase leader bits are drawn from r exactly as the agent
// form draws them from the scheduler stream.
func (p specCodec) delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	su, sv := p.decode(qu), p.decode(qv)
	uc := clock.State{Val: su.innerVal}
	vc := clock.State{Val: sv.innerVal}
	p.elect.Inner.Tick(&uc, &vc, su.junta, sv.junta)
	us := State{
		IsLeader: su.isLeader, Done: su.done, Bit: su.bit, SeenMax: su.seenMax,
		Tag: su.tag, Outer: clock.State{Val: su.outerVal, Phase: uint32(su.outerPhase)},
	}
	vs := State{
		IsLeader: sv.isLeader, Done: sv.done, Bit: sv.bit, SeenMax: sv.seenMax,
		Tag: sv.tag, Outer: clock.State{Val: sv.outerVal, Phase: uint32(sv.outerPhase)},
	}
	p.elect.Interact(&us, &vs, uc, vc, su.junta, sv.junta, r)
	return p.encode(p.pack(us, uc, su.junta)), p.encode(p.pack(vs, vc, sv.junta))
}

// randomized reports the pairs whose transition consumes coins. The only
// randomness in leader_elect is the per-phase leader coin, drawn when a
// still-contending, not-yet-done endpoint crosses a phase boundary
// (Election.boundary); every other pair transitions deterministically.
// The boundary condition is re-derived from a dry run of the inner clock
// tick, conservatively treating a pre-retirement contender as a coin
// consumer.
func (p specCodec) randomized(qu, qv uint64) bool {
	su, sv := p.decode(qu), p.decode(qv)
	uc := clock.State{Val: su.innerVal}
	vc := clock.State{Val: sv.innerVal}
	p.elect.Inner.Tick(&uc, &vc, su.junta, sv.junta)
	return (uc.FirstTick && su.isLeader && !su.done) ||
		(vc.FirstTick && sv.isLeader && !sv.done)
}

// pack rebuilds a cstate from the post-interaction election and clock
// states, re-capping the outer phase counter.
func (p specCodec) pack(s State, c clock.State, junta bool) cstate {
	op := uint8(0)
	if s.Outer.Phase >= 1 {
		op = 1
	}
	return cstate{
		innerVal:   c.Val,
		tag:        s.Tag,
		bit:        s.Bit,
		seenMax:    s.SeenMax,
		isLeader:   s.IsLeader,
		done:       s.Done,
		outerVal:   s.Outer.Val,
		outerPhase: op,
		junta:      junta,
	}
}

// NewSpec returns the canonical transition spec of leader_elect over n
// agents with an inner clock of m hours and a fixed junta of juntaSize
// agents (laid out first, like NewProtocol). Agents are exchangeable
// given the full cstate tuple, so the count view is exact; the engines
// discover the occupied alphabet (clock values cluster in a moving
// window, so it stays far below the full product space) lazily.
//
// Like the clock's spec, leader_elect does not opt into the self-loop
// skip path: with a moving clock window most pairs change state anyway,
// and the no-op bookkeeping would cost more than it saves.
func NewSpec(n, m, juntaSize int) *sim.Spec {
	if juntaSize < 1 || juntaSize > n {
		panic("leader: junta size out of range")
	}
	inner := clock.New(m)
	e := NewElection(inner, m)
	codec := specCodec{
		elect:   e,
		spanOut: uint64(e.Outer.M) * uint64(e.Outer.K),
	}
	member := codec.encode(cstate{isLeader: true, junta: true})
	plain := codec.encode(cstate{isLeader: true})
	return &sim.Spec{
		Name: "leader",
		N:    n,
		Init: func() map[uint64]int64 {
			init := map[uint64]int64{member: int64(juntaSize)}
			if rest := int64(n - juntaSize); rest > 0 {
				init[plain] = rest
			}
			return init
		},
		Layout: func() []uint64 {
			layout := make([]uint64, n)
			for i := range layout {
				if i < juntaSize {
					layout[i] = member
				} else {
					layout[i] = plain
				}
			}
			return layout
		},
		Delta:      codec.delta,
		Randomized: codec.randomized,
		Converged: func(v sim.ConfigView) bool {
			var leaders int64
			done := true
			v.ForEach(func(code uint64, cnt int64) {
				s := codec.decode(code)
				if s.isLeader {
					leaders += cnt
				}
				if !s.done {
					done = false
				}
			})
			return leaders == 1 && done
		},
		Output: func(q uint64) int64 {
			if codec.decode(q).isLeader {
				return 1
			}
			return 0
		},
	}
}

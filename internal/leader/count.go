package leader

import (
	"popcount/internal/clock"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// cstate is the per-agent state tuple of the count form of leader_elect:
// the inner phase-clock value, the election state, the outer clock value
// with its phase counter capped at 1 (only Outer.Phase ≥ 1 is ever read
// — it raises leaderDone), and the fixed junta membership. The inner
// clock's absolute phase counter is never read by the election (only
// FirstTick and the value-derived phase index are), so it is not part of
// the code and the alphabet stays finite.
type cstate struct {
	innerVal   uint16
	tag        uint8
	bit        uint8
	seenMax    uint8
	isLeader   bool
	done       bool
	outerVal   uint16
	outerPhase uint8 // capped at 1
	junta      bool
}

// Counts is the configuration-level (count-based) form of Protocol for
// sim.CountEngine: leader_elect over a real inner phase clock driven by
// a fixed junta. Agents are exchangeable given the full tuple above, so
// the count view is exact; the engine discovers the occupied alphabet
// (clock values cluster in a moving window, so it stays far below the
// full product space) lazily. Coins for the per-phase leader bits are
// drawn from the engine's generator exactly as the agent form draws them
// from the scheduler stream.
//
// Like the clock's count form, Counts does not implement sim.SelfLooper:
// with a moving clock window most pairs change state anyway, and the
// no-op bookkeeping would cost more than it saves.
type Counts struct {
	elect     Election
	n         int
	juntaSize int
	spanIn    uint64
	spanOut   uint64
}

// NewCounts returns the count form of leader_elect over n agents with an
// inner clock of m hours and a fixed junta of juntaSize agents —
// the configuration-level twin of NewProtocol.
func NewCounts(n, m, juntaSize int) *Counts {
	if juntaSize < 1 || juntaSize > n {
		panic("leader: junta size out of range")
	}
	inner := clock.New(m)
	e := NewElection(inner, m)
	return &Counts{
		elect:     e,
		n:         n,
		juntaSize: juntaSize,
		spanIn:    uint64(inner.M) * uint64(inner.K),
		spanOut:   uint64(e.Outer.M) * uint64(e.Outer.K),
	}
}

// encode packs a cstate into a code by mixed-radix composition.
func (p *Counts) encode(s cstate) uint64 {
	c := uint64(s.innerVal)
	c = c*uint64(p.elect.Inner.K) + uint64(s.tag)
	c = c*2 + uint64(s.bit)
	c = c*2 + uint64(s.seenMax)
	c = c * 2
	if s.isLeader {
		c++
	}
	c = c * 2
	if s.done {
		c++
	}
	c = c*p.spanOut + uint64(s.outerVal)
	c = c*2 + uint64(s.outerPhase)
	c = c * 2
	if s.junta {
		c++
	}
	return c
}

// decode unpacks a code.
func (p *Counts) decode(c uint64) cstate {
	var s cstate
	s.junta = c&1 != 0
	c >>= 1
	s.outerPhase = uint8(c & 1)
	c >>= 1
	s.outerVal = uint16(c % p.spanOut)
	c /= p.spanOut
	s.done = c&1 != 0
	c >>= 1
	s.isLeader = c&1 != 0
	c >>= 1
	s.seenMax = uint8(c & 1)
	c >>= 1
	s.bit = uint8(c & 1)
	c >>= 1
	s.tag = uint8(c % uint64(p.elect.Inner.K))
	c /= uint64(p.elect.Inner.K)
	s.innerVal = uint16(c)
	return s
}

// N returns the population size.
func (p *Counts) N() int { return p.n }

// InitCounts returns the initial configuration: every agent a leader
// contender at clock value 0, juntaSize of them junta members.
func (p *Counts) InitCounts() map[uint64]int64 {
	member := cstate{isLeader: true, junta: true}
	plain := cstate{isLeader: true}
	init := map[uint64]int64{p.encode(member): int64(p.juntaSize)}
	if rest := int64(p.n - p.juntaSize); rest > 0 {
		init[p.encode(plain)] = rest
	}
	return init
}

// Delta applies one leader_elect transition — inner clock tick, then
// election step — to a state pair, mirroring Protocol.Interact.
func (p *Counts) Delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	su, sv := p.decode(qu), p.decode(qv)
	uc := clock.State{Val: su.innerVal}
	vc := clock.State{Val: sv.innerVal}
	p.elect.Inner.Tick(&uc, &vc, su.junta, sv.junta)
	us := State{
		IsLeader: su.isLeader, Done: su.done, Bit: su.bit, SeenMax: su.seenMax,
		Tag: su.tag, Outer: clock.State{Val: su.outerVal, Phase: uint32(su.outerPhase)},
	}
	vs := State{
		IsLeader: sv.isLeader, Done: sv.done, Bit: sv.bit, SeenMax: sv.seenMax,
		Tag: sv.tag, Outer: clock.State{Val: sv.outerVal, Phase: uint32(sv.outerPhase)},
	}
	p.elect.Interact(&us, &vs, uc, vc, su.junta, sv.junta, r)
	return p.encode(p.pack(us, uc, su.junta)), p.encode(p.pack(vs, vc, sv.junta))
}

// DeltaDet exposes the transition matrix for batch stepping
// (sim.DeterministicDelta). The only randomness in leader_elect is the
// per-phase leader coin, drawn when a still-contending, not-yet-done
// endpoint crosses a phase boundary (Election.boundary); every other
// pair transitions deterministically. The boundary condition is
// re-derived from a dry run of the inner clock tick, conservatively
// treating a pre-retirement contender as a coin consumer.
func (p *Counts) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	su, sv := p.decode(qu), p.decode(qv)
	uc := clock.State{Val: su.innerVal}
	vc := clock.State{Val: sv.innerVal}
	p.elect.Inner.Tick(&uc, &vc, su.junta, sv.junta)
	if (uc.FirstTick && su.isLeader && !su.done) ||
		(vc.FirstTick && sv.isLeader && !sv.done) {
		return 0, 0, false
	}
	a, b := p.Delta(qu, qv, nil)
	return a, b, true
}

// pack rebuilds a cstate from the post-interaction election and clock
// states, re-capping the outer phase counter.
func (p *Counts) pack(s State, c clock.State, junta bool) cstate {
	op := uint8(0)
	if s.Outer.Phase >= 1 {
		op = 1
	}
	return cstate{
		innerVal:   c.Val,
		tag:        s.Tag,
		bit:        s.Bit,
		seenMax:    s.SeenMax,
		isLeader:   s.IsLeader,
		done:       s.Done,
		outerVal:   s.Outer.Val,
		outerPhase: op,
		junta:      junta,
	}
}

// CountConverged reports whether exactly one leader contender remains
// and every agent has leaderDone set.
func (p *Counts) CountConverged(c *sim.CountConfig) bool {
	var leaders int64
	done := true
	c.ForEach(func(code uint64, cnt int64) {
		s := p.decode(code)
		if s.isLeader {
			leaders += cnt
		}
		if !s.done {
			done = false
		}
	})
	return leaders == 1 && done
}

// LeadersInConfig returns the number of leader contenders in a
// configuration (the count-form analogue of Protocol.Leaders).
func LeadersInConfig(p *Counts, c *sim.CountConfig) int64 {
	var leaders int64
	c.ForEach(func(code uint64, cnt int64) {
		if p.decode(code).isLeader {
			leaders += cnt
		}
	})
	return leaders
}

// StateOutput returns 1 for leader states and 0 otherwise.
func (p *Counts) StateOutput(q uint64) int64 {
	if p.decode(q).isLeader {
		return 1
	}
	return 0
}

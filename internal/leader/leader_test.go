package leader

import (
	"math"
	"testing"

	"popcount/internal/clock"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestElectionInit(t *testing.T) {
	e := NewElection(clock.New(16), 16)
	s := e.Init()
	if !s.IsLeader || s.Done {
		t.Fatalf("Init = %+v, want leader, not done", s)
	}
}

func TestBoundaryRetiresSmallerBit(t *testing.T) {
	e := NewElection(clock.New(16), 16)
	r := rng.New(1)
	w := State{IsLeader: true, Bit: 0, SeenMax: 1}
	wc := clock.State{FirstTick: true}
	e.boundary(&w, wc, r)
	if w.IsLeader {
		t.Fatal("leader with bit below the seen maximum did not retire")
	}
	if w.Bit != 0 || w.SeenMax != 0 {
		t.Fatalf("retired agent should hold bit 0: %+v", w)
	}
}

func TestBoundaryMaxHolderSurvives(t *testing.T) {
	e := NewElection(clock.New(16), 16)
	r := rng.New(1)
	w := State{IsLeader: true, Bit: 1, SeenMax: 1}
	e.boundary(&w, clock.State{FirstTick: true}, r)
	if !w.IsLeader {
		t.Fatal("leader holding the maximum bit retired")
	}
}

func TestSeenMaxExchangeRequiresEqualTags(t *testing.T) {
	e := NewElection(clock.New(16), 16)
	r := rng.New(1)
	u := State{IsLeader: true, SeenMax: 0, Tag: 1}
	v := State{IsLeader: true, SeenMax: 1, Tag: 2}
	e.Interact(&u, &v, clock.State{}, clock.State{}, false, false, r)
	if u.SeenMax != 0 {
		t.Fatal("SeenMax leaked across phase tags")
	}
	v.Tag = 1
	e.Interact(&u, &v, clock.State{}, clock.State{}, false, false, r)
	if u.SeenMax != 1 {
		t.Fatal("SeenMax did not spread between equal tags")
	}
}

func TestDoneSpreadsByEpidemics(t *testing.T) {
	e := NewElection(clock.New(16), 16)
	r := rng.New(1)
	u := State{Done: true}
	v := State{}
	e.Interact(&u, &v, clock.State{}, clock.State{}, false, false, r)
	if !v.Done {
		t.Fatal("Done flag did not spread")
	}
}

func TestSlowElectionUniqueLeader(t *testing.T) {
	// Lemma 6: unique leader, O(n log² n) stabilization.
	for _, n := range []int{512, 2048} {
		for trial := 0; trial < 3; trial++ {
			p := NewProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n))
			res, err := sim.Run(p, sim.Config{Seed: uint64(100*n + trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d trial %d: not converged (%d leaders, %d done)",
					n, trial, p.Leaders(), p.DoneCount())
			}
			if p.Leaders() != 1 {
				t.Fatalf("n=%d: %d leaders after convergence", n, p.Leaders())
			}
			lg := math.Log(float64(n))
			if norm := float64(res.Interactions) / (float64(n) * lg * lg); norm > 120 {
				t.Errorf("n=%d: stabilization %.1f × n ln² n is out of band", n, norm)
			}
		}
	}
}

func TestAlwaysAtLeastOneLeaderSlow(t *testing.T) {
	n := 256
	p := NewProtocol(n, clock.DefaultM, 8)
	r := rng.New(5)
	for i := 0; i < 2_000_000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if p.Leaders() < 1 {
			t.Fatalf("no leader left after %d interactions", i+1)
		}
	}
}

func TestFastElectionUniqueLeader(t *testing.T) {
	// Lemma 7: unique leader in O(n log n) interactions.
	for _, n := range []int{512, 2048, 8192} {
		for trial := 0; trial < 3; trial++ {
			p := NewFastProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), DefaultFastRounds)
			res, err := sim.Run(p, sim.Config{Seed: uint64(200*n + trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || p.Leaders() != 1 {
				t.Fatalf("n=%d trial %d: converged=%v leaders=%d",
					n, trial, res.Converged, p.Leaders())
			}
			if norm := float64(res.Interactions) / (float64(n) * math.Log(float64(n))); norm > 150 {
				t.Errorf("n=%d: stabilization %.1f × n ln n is out of band", n, norm)
			}
		}
	}
}

func TestAlwaysAtLeastOneLeaderFast(t *testing.T) {
	n := 256
	p := NewFastProtocol(n, clock.DefaultM, 8, DefaultFastRounds)
	r := rng.New(7)
	for i := 0; i < 2_000_000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if p.Leaders() < 1 {
			t.Fatalf("no leader left after %d interactions", i+1)
		}
	}
}

func TestBitsClamped(t *testing.T) {
	if bits(0) != 16 {
		t.Fatalf("bits(0) = %d, want floor 16", bits(0))
	}
	if bits(5) != 32 {
		t.Fatalf("bits(5) = %d, want 32", bits(5))
	}
	if bits(10) != 60 {
		t.Fatalf("bits(10) = %d, want clamp 60", bits(10))
	}
}

func TestFastSamplingOnlyForContenders(t *testing.T) {
	e := NewFastElection(clock.New(16), 3)
	r := rng.New(9)
	// Non-contender samples 0 in an even phase.
	w := FastState{IsLeader: false}
	wc := clock.State{Val: 0, FirstTick: true} // phase index 0 (even)
	e.fastBoundary(&w, wc, 4, r)
	if w.Val != 0 {
		t.Fatalf("non-contender sampled %d", w.Val)
	}
	// Contender samples a value with the right width.
	l := FastState{IsLeader: true}
	e.fastBoundary(&l, wc, 4, r)
	if l.Val >= 1<<16 {
		t.Fatalf("sample %d exceeds 16-bit width", l.Val)
	}
}

func TestFastRetireOnSmallerValue(t *testing.T) {
	e := NewFastElection(clock.New(16), 3)
	r := rng.New(11)
	u := FastState{IsLeader: true, Val: 3, Tag: 1}
	v := FastState{IsLeader: true, Val: 9, Tag: 1}
	e.Interact(&u, &v, clock.State{}, clock.State{}, 4, 4, r)
	if u.IsLeader {
		t.Fatal("smaller-valued contender survived an odd-phase comparison")
	}
	if !v.IsLeader {
		t.Fatal("maximum holder retired")
	}
	if u.Val != 9 {
		t.Fatal("maximum value did not spread")
	}
}

func TestFastNoRetireInEvenPhase(t *testing.T) {
	e := NewFastElection(clock.New(16), 3)
	r := rng.New(13)
	u := FastState{IsLeader: true, Val: 3, Tag: 2}
	v := FastState{IsLeader: true, Val: 9, Tag: 2}
	e.Interact(&u, &v, clock.State{}, clock.State{}, 4, 4, r)
	if !u.IsLeader {
		t.Fatal("contender retired during an even (sampling) phase")
	}
}

func TestProtocolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero junta")
		}
	}()
	NewProtocol(10, 16, 0)
}

// Package leader implements the two leader-election protocols the paper
// builds on: the stable, uniform protocol leader_elect of [GS18]
// (Section 2, Lemma 6) and FastLeaderElection of [BEFKKR18]
// (Section 2 and Appendix D, Lemma 7).
//
// Both protocols run on top of a junta-driven phase clock supplied by the
// caller (the combined protocols of internal/core wire the clock and the
// junta process in; the stand-alone wrappers in this package use a fixed
// junta for clean measurement of Lemmas 6 and 7).
//
// leader_elect: every agent starts as a leader. In each phase of the
// inner clock every remaining leader draws a random bit; the maximum bit
// among leaders spreads by one-way epidemics during the phase, and at the
// next phase boundary every leader that drew less than the observed
// maximum retires. The number of leaders halves in expectation per phase,
// and at least one leader always survives (a maximum holder can never
// retire). Agents additionally run an outer phase clock, performing one
// outer interaction per inner phase; when the outer clock completes its
// first revolution — after Θ(log n) inner phases, i.e. Θ(n log² n)
// interactions — the agent sets leaderDone, at which point the leader is
// unique w.h.p.
//
// FastLeaderElection: in even phases every contender samples Θ(log n)
// random bits at once (2^level with level from the junta process; the
// paper's synthetic-coin argument justifies drawing the bits from the
// scheduler's randomness); in odd phases the maximum sampled value
// spreads and smaller contenders retire. After a constant number of
// rounds every agent sets leaderDone, after O(n log n) interactions, and
// the survivor is unique w.h.p.
package leader

import (
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// State is the per-agent state of the slow leader_elect protocol.
type State struct {
	// IsLeader reports whether the agent is still a leader contender.
	IsLeader bool
	// Done is the leaderDone flag: set when the agent's outer phase
	// clock completes its first revolution.
	Done bool
	// Bit is the coin the agent drew for the current inner phase
	// (always 0 for non-leaders).
	Bit uint8
	// SeenMax is the maximum leader bit observed during the current
	// inner phase.
	SeenMax uint8
	// Tag is the synchronized phase index the Bit/SeenMax values belong
	// to; values are exchanged only between agents with equal tags.
	Tag uint8
	// Outer is the agent's outer phase-clock state.
	Outer clock.State
}

// Election is the configuration of the slow leader_elect protocol.
type Election struct {
	// Inner is the (shared) inner phase clock configuration.
	Inner clock.Clock
	// Outer is the outer phase clock; one outer interaction is performed
	// per inner phase. Its first revolution takes Θ(log n) inner phases.
	Outer clock.Clock
}

// NewElection returns a leader_elect configuration over the given inner
// clock, with an outer clock of outerM hours (use clock.DefaultM).
func NewElection(inner clock.Clock, outerM int) Election {
	return Election{Inner: inner, Outer: clock.NewWithModulus(outerM, 1)}
}

// Init returns the initial agent state: a leader contender.
func (e Election) Init() State { return State{IsLeader: true} }

// Interact applies one leader_elect step to both endpoints. uc and vc are
// the endpoints' inner-clock states after this interaction's clock tick;
// uJunta and vJunta are the junta bits driving the outer clock.
func (e Election) Interact(u, v *State, uc, vc clock.State, uJunta, vJunta bool, r *rng.Rand) {
	e.boundary(u, uc, r)
	e.boundary(v, vc, r)

	// One outer-clock interaction per inner phase (per the paper: agents
	// perform an interaction of the outer phase clock once per phase of
	// the inner phase clock).
	if uc.FirstTick || vc.FirstTick {
		e.Outer.Tick(&u.Outer, &v.Outer, uJunta, vJunta)
		if u.Outer.Phase >= 1 {
			u.Done = true
		}
		if v.Outer.Phase >= 1 {
			v.Done = true
		}
	}

	// One-way epidemics of the per-phase maximum bit, restricted to
	// agents whose values belong to the same phase. Agents with
	// leaderDone set have left Stage 1 and no longer take part.
	if u.Tag == v.Tag {
		if !u.Done && v.SeenMax > u.SeenMax {
			u.SeenMax = v.SeenMax
		} else if !v.Done && u.SeenMax > v.SeenMax {
			v.SeenMax = u.SeenMax
		}
	}

	// leaderDone spreads by one-way epidemics.
	if u.Done || v.Done {
		u.Done, v.Done = true, true
	}
}

// boundary handles the phase-boundary bookkeeping for one endpoint: the
// previous phase's contest concludes and a fresh coin is drawn.
func (e Election) boundary(w *State, wc clock.State, r *rng.Rand) {
	if !wc.FirstTick || w.Done {
		// Once leaderDone is set the agent has moved on to the next
		// stage and freezes its election state.
		return
	}
	if w.IsLeader && w.Bit < w.SeenMax {
		w.IsLeader = false
	}
	w.Bit = 0
	if w.IsLeader {
		if r.Bool() {
			w.Bit = 1
		}
	}
	w.SeenMax = w.Bit
	w.Tag = e.Inner.PhaseIdx(wc)
}

// FastState is the per-agent state of FastLeaderElection.
type FastState struct {
	// IsLeader reports whether the agent is still a contender.
	IsLeader bool
	// Done is the leaderDone flag.
	Done bool
	// Val is the value sampled in the current round (0 for
	// non-contenders), spread by maximum broadcast in odd phases.
	Val uint64
	// Tag is the synchronized phase index Val belongs to.
	Tag uint8
	// Phases counts the inner phases this agent has completed since the
	// protocol (re)started, saturating at 255.
	Phases uint8
}

// FastElection is the configuration of FastLeaderElection.
type FastElection struct {
	// Inner is the shared inner phase clock configuration.
	Inner clock.Clock
	// Rounds is the number of sample/broadcast phase pairs before
	// leaderDone is raised. The collision probability is about
	// n²·2^(−Rounds·log n); the default of 3 gives ≤ 1/n.
	Rounds int
}

// DefaultFastRounds is the default number of sample/broadcast rounds.
const DefaultFastRounds = 3

// NewFastElection returns a FastLeaderElection configuration.
func NewFastElection(inner clock.Clock, rounds int) FastElection {
	if rounds < 1 {
		rounds = DefaultFastRounds
	}
	return FastElection{Inner: inner, Rounds: rounds}
}

// Init returns the initial agent state: a contender.
func (e FastElection) Init() FastState { return FastState{IsLeader: true} }

// bits returns the number of random bits a contender samples per round,
// 2^level per the paper (level from the junta process reaches
// log log n ± O(1), so 2^level ≈ log n), clamped to [16, 60]. The floor
// matters: Lemma 4 allows level* as low as log log n − 4, and with only
// 2^level ≈ (log n)/16 bits the surviving contenders tie at the sampled
// maximum too often before the constant number of rounds runs out. The
// paper absorbs this into its astronomically large phase constant (2¹³);
// a 16-bit floor achieves the same ≤ n⁻¹ collision bound at laptop n
// without changing the state asymptotics.
func bits(level uint8) uint {
	b := uint(1) << level
	if b < 16 {
		b = 16
	}
	if b > 60 {
		b = 60
	}
	return b
}

// Interact applies one FastLeaderElection step to both endpoints. uc, vc
// are the endpoints' inner-clock states after this interaction's tick;
// uLevel, vLevel their junta-process levels (used to size the samples).
func (e FastElection) Interact(u, v *FastState, uc, vc clock.State, uLevel, vLevel uint8, r *rng.Rand) {
	e.fastBoundary(u, uc, uLevel, r)
	e.fastBoundary(v, vc, vLevel, r)

	// Odd phases: maximum broadcast of sampled values; smaller
	// contenders retire (Algorithm 8, lines 7–9). Agents with leaderDone
	// set have left the election stage.
	if u.Tag == v.Tag && e.odd(u.Tag) {
		if !u.Done && u.Val < v.Val {
			if u.IsLeader {
				u.IsLeader = false
			}
			u.Val = v.Val
		} else if !v.Done && v.Val < u.Val {
			if v.IsLeader {
				v.IsLeader = false
			}
			v.Val = u.Val
		}
	}

	// leaderDone spreads by one-way epidemics.
	if u.Done || v.Done {
		u.Done, v.Done = true, true
	}
}

func (e FastElection) odd(tag uint8) bool { return tag%2 == 1 }

func (e FastElection) fastBoundary(w *FastState, wc clock.State, level uint8, r *rng.Rand) {
	if !wc.FirstTick || w.Done {
		return
	}
	if w.Phases < 255 {
		w.Phases++
	}
	w.Tag = e.Inner.PhaseIdx(wc)
	if !e.odd(w.Tag) {
		// Sampling phase: contenders draw a fresh random value
		// (synthetic coins; the paper samples one bit per interaction,
		// which has the same distribution as sampling them at once).
		if w.IsLeader {
			w.Val = r.Bits(bits(level))
		} else {
			w.Val = 0
		}
	}
	if int(w.Phases) > 2*e.Rounds {
		w.Done = true
	}
}

// Protocol is a stand-alone simulation of leader_elect over a real phase
// clock driven by a fixed junta set of the first juntaSize agents, for
// experiment E4. The fixed junta isolates Lemma 6 from junta election;
// the full composition with the junta process lives in internal/core.
type Protocol struct {
	elect  Election
	clocks []clock.State
	states []State
	junta  []bool
	lead   int // current number of leader contenders
}

// NewProtocol returns a leader_elect simulation over n agents with inner
// clock m hours and a fixed junta of juntaSize agents.
func NewProtocol(n, m, juntaSize int) *Protocol {
	if juntaSize < 1 || juntaSize > n {
		panic("leader: junta size out of range")
	}
	inner := clock.New(m)
	e := NewElection(inner, m)
	p := &Protocol{
		elect:  e,
		clocks: make([]clock.State, n),
		states: make([]State, n),
		junta:  make([]bool, n),
		lead:   n,
	}
	for i := range p.states {
		p.states[i] = e.Init()
	}
	for i := 0; i < juntaSize; i++ {
		p.junta[i] = true
	}
	return p
}

// N returns the population size.
func (p *Protocol) N() int { return len(p.states) }

// Interact applies one transition: clock tick, then election step.
func (p *Protocol) Interact(u, v int, r *rng.Rand) {
	lu, lv := p.states[u].IsLeader, p.states[v].IsLeader
	p.elect.Inner.Tick(&p.clocks[u], &p.clocks[v], p.junta[u], p.junta[v])
	p.elect.Interact(&p.states[u], &p.states[v], p.clocks[u], p.clocks[v],
		p.junta[u], p.junta[v], r)
	if lu && !p.states[u].IsLeader {
		p.lead--
	}
	if lv && !p.states[v].IsLeader {
		p.lead--
	}
}

// Converged reports whether exactly one leader remains and every agent
// has leaderDone set.
func (p *Protocol) Converged() bool {
	if p.lead != 1 {
		return false
	}
	for i := range p.states {
		if !p.states[i].Done {
			return false
		}
	}
	return true
}

// Leaders returns the current number of leader contenders.
func (p *Protocol) Leaders() int { return p.lead }

// DoneCount returns the number of agents with leaderDone set.
func (p *Protocol) DoneCount() int {
	c := 0
	for i := range p.states {
		if p.states[i].Done {
			c++
		}
	}
	return c
}

// LeadersAtDone returns the number of contenders remaining at the moment
// the first agent set leaderDone; it equals Leaders() when no agent is
// done yet.
func (p *Protocol) State(i int) State { return p.states[i] }

// FastProtocol is a stand-alone simulation of FastLeaderElection over a
// real phase clock with a fixed junta, for experiment E5. Junta members
// report a level consistent with log log n to size the samples.
type FastProtocol struct {
	elect  FastElection
	clocks []clock.State
	states []FastState
	juntaF []bool
	level  uint8
	lead   int
}

// NewFastProtocol returns a FastLeaderElection simulation over n agents.
func NewFastProtocol(n, m, juntaSize, rounds int) *FastProtocol {
	if juntaSize < 1 || juntaSize > n {
		panic("leader: junta size out of range")
	}
	inner := clock.New(m)
	e := NewFastElection(inner, rounds)
	p := &FastProtocol{
		elect:  e,
		clocks: make([]clock.State, n),
		states: make([]FastState, n),
		juntaF: make([]bool, n),
		level:  levelFor(n),
		lead:   n,
	}
	for i := range p.states {
		p.states[i] = e.Init()
	}
	for i := 0; i < juntaSize; i++ {
		p.juntaF[i] = true
	}
	return p
}

// levelFor returns a junta level consistent with Lemma 4 for population
// size n: ⌈log₂ log₂ n⌉.
func levelFor(n int) uint8 {
	l := sim.Log2Ceil(sim.Log2Ceil(n))
	if l < 1 {
		l = 1
	}
	if l > junta.MaxLevel {
		l = junta.MaxLevel
	}
	return uint8(l)
}

// N returns the population size.
func (p *FastProtocol) N() int { return len(p.states) }

// Interact applies one transition.
func (p *FastProtocol) Interact(u, v int, r *rng.Rand) {
	lu, lv := p.states[u].IsLeader, p.states[v].IsLeader
	p.elect.Inner.Tick(&p.clocks[u], &p.clocks[v], p.juntaF[u], p.juntaF[v])
	p.elect.Interact(&p.states[u], &p.states[v], p.clocks[u], p.clocks[v],
		p.level, p.level, r)
	if lu && !p.states[u].IsLeader {
		p.lead--
	}
	if lv && !p.states[v].IsLeader {
		p.lead--
	}
}

// Converged reports whether exactly one leader remains and all agents
// have leaderDone set.
func (p *FastProtocol) Converged() bool {
	if p.lead != 1 {
		return false
	}
	for i := range p.states {
		if !p.states[i].Done {
			return false
		}
	}
	return true
}

// Leaders returns the current number of contenders.
func (p *FastProtocol) Leaders() int { return p.lead }

// DoneCount returns the number of agents with leaderDone set.
func (p *FastProtocol) DoneCount() int {
	c := 0
	for i := range p.states {
		if p.states[i].Done {
			c++
		}
	}
	return c
}
